// Adaptive per-page protocol switching vs every fixed protocol on a mixed
// workload (the tentpole's headline number).
//
// No single consistency protocol wins a mixed working set: the eager MRSW
// protocols (li_hudak, erc_sw) pay an invalidation round plus a refetch storm
// per write on read-mostly pages, the home-based protocols (hbrc_mw, lrc_mw)
// pay a double round trip (base fetch + diff) per hand-off on migratory
// pages, and sequential consistency bounces falsely-shared pages whole. The
// ProtocolAdvisor classifies each page online from the traffic its serving
// site already sees and rebinds it — migratory -> erc_sw, read-mostly ->
// lrc_mw, producer-consumer and page-grain false sharing -> hbrc_mw — via the
// drained two-phase hand-off over dsm.proto.switch.
//
// Workload per round, four page groups driven under per-group locks:
//   * migratory:   two writers ping-pong whole-page blind writes (the full
//                  page is dirty every hand-off, so laziness buys nothing:
//                  a page-sized diff costs the wire what the page grant
//                  does, plus twin + diff-scan time), and every fourth
//                  round a lagging auditor reads under the lock — eager
//                  migration serves it one grant where lrc_mw replays the
//                  whole accumulated interval chain, diff by diff;
//   * read-mostly: the home writes one word, every other node re-reads
//                  WITHOUT synchronizing (RC-legal staleness, the paper's
//                  monitor scenario) — under DSMPM2_CHECKER=1 the monitors
//                  take the lock instead so the run stays race-free in
//                  abort mode;
//   * producer-consumer: node 1 writes a word, node 2 reads it and writes an
//                  ack word on the same page;
//   * false sharing: writers 1,2,1,3 update their own 1 KB quarter of one
//                  page, so the home's diff merge beats per-writer pulls.
//
// Measured end-to-end (simulated time of the whole phase), adaptive vs the
// same workload with ALL pages pinned to each fixed protocol. The self-check
// bar is the ISSUE acceptance: adaptive >= 1.3x faster than EVERY fixed
// protocol, with every page group landing on its expected target protocol.
//
// Usage: bench_adaptive [--smoke] [--json <path>]
//   --smoke   4-node point only (CI: the `ctest -L smoke` + `-L checked` entries)
//   --json    also write machine-readable results to <path>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "dsm/adaptive.hpp"
#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

using namespace dsmpm2;

namespace {

constexpr int kMigPages = 3;
constexpr int kRmPages = 3;
constexpr int kPcPages = 1;
constexpr int kFsPages = 1;

struct GroupLanding {
  const char* pattern = "";
  int pages = 0;
  int on_target = 0;      // pages that ended bound to the pattern's protocol
  std::string stray;      // a protocol some off-target page ended on
};

struct Point {
  std::string protocol;
  int nodes = 0;
  int rounds = 0;
  double end_us = 0;         // simulated end of the whole measured phase
  std::uint64_t total_msgs = 0;
  std::uint64_t total_bytes = 0;
  // Adaptive-run extras (zero for fixed-protocol points).
  std::uint64_t proto_switches = 0;
  std::uint64_t classify_events = 0;
  std::uint64_t switch_nacks = 0;
  std::uint64_t pages_reclassified = 0;
  std::vector<GroupLanding> landings;
};

/// Spreads a small counter over every byte of a long, so byte-granular
/// diffs of rewritten pages are honestly page-sized (a bare counter only
/// perturbs the low bytes and lets laziness ship token diffs).
long spread(long v) { return v * 0x0101010101010101L; }

std::uint64_t wire_msgs(pm2::Runtime& rt) {
  std::uint64_t sum = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(rt.node_count()); ++n) {
    sum += rt.network().stats(n).messages_sent;
  }
  return sum;
}

std::uint64_t wire_bytes(pm2::Runtime& rt) {
  std::uint64_t sum = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(rt.node_count()); ++n) {
    sum += rt.network().stats(n).bytes_sent;
  }
  return sum;
}

bool checker_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded at this point.
  return std::getenv("DSMPM2_CHECKER") != nullptr;
}

Point measure(const std::string& protocol, int nodes, int rounds) {
  const bool adaptive = protocol == "adaptive";
  const bool checked = checker_env();
  pm2::Config cfg;
  cfg.nodes = nodes;
  cfg.driver = madeleine::bip_myrinet();
  pm2::Runtime rt(cfg);
  dsm::DsmConfig dcfg;
  dcfg.enable_adaptive_protocols = adaptive;
  dcfg.adaptive_threshold = 8;
  // The classifier window counts events, so the occasional audit read must
  // not tip a write-dominated window into "interleaving": 6 writes + 2
  // reads is still migratory at ratio 3.
  dcfg.adaptive_read_ratio = 3;
  dcfg.enable_checker = checked;
  dcfg.checker_abort = checked;
  dsm::Dsm dsm(rt, dcfg);
  const dsm::ProtocolId proto = dsm.protocol_by_name(protocol);
  DSM_CHECK(proto != dsm::kInvalidProtocol);

  // One single-page area per page; group homes sit where the pattern's
  // dominant server is so classification windows accumulate at one site.
  const auto alloc_page = [&](NodeId home) {
    dsm::AllocAttr attr;
    attr.protocol = proto;
    attr.home_policy = dsm::HomePolicy::kFixed;
    attr.fixed_home = home;
    return dsm.dsm_malloc(dsm.config().page_size, attr);
  };
  std::vector<DsmAddr> mig;
  std::vector<DsmAddr> rm;
  std::vector<DsmAddr> pc;
  std::vector<DsmAddr> fs;
  for (int i = 0; i < kMigPages; ++i) mig.push_back(alloc_page(0));
  for (int i = 0; i < kRmPages; ++i) rm.push_back(alloc_page(0));
  for (int i = 0; i < kPcPages; ++i) pc.push_back(alloc_page(0));
  for (int i = 0; i < kFsPages; ++i) fs.push_back(alloc_page(0));
  const int mig_lock = dsm.create_lock(proto);
  const int rm_lock = dsm.create_lock(proto);
  const int pc_lock = dsm.create_lock(proto);
  const int fs_lock = dsm.create_lock(proto);

  Point point;
  point.protocol = protocol;
  point.nodes = nodes;
  point.rounds = rounds;
  bool data_ok = true;

  const pm2::RunStats run_stats = rt.run([&] {
    for (int r = 1; r <= rounds; ++r) {
      // Migratory: exclusive whole-page blind writes ping-ponging between
      // two nodes, with a lagging auditor every fourth round.
      const std::uint32_t page_longs =
          dsm.config().page_size / sizeof(long);
      for (const DsmAddr page : mig) {
        for (const NodeId w : {NodeId{1}, NodeId{2}, NodeId{1}, NodeId{2}}) {
          auto& t = rt.spawn_on(w, "mig", [&] {
            dsm.lock_acquire(mig_lock);
            for (std::uint32_t i = 0; i < page_longs; ++i) {
              dsm.write<long>(page + i * sizeof(long),
                              spread(2L * r + static_cast<long>(w)));
            }
            dsm.lock_release(mig_lock);
          });
          rt.threads().join(t);
        }
        if (r % 4 == 0) {
          auto& a = rt.spawn_on(3, "mig-audit", [&] {
            dsm.lock_acquire(mig_lock);
            (void)dsm.read<long>(page);
            dsm.lock_release(mig_lock);
          });
          rt.threads().join(a);
        }
      }
      // Read-mostly: the home refreshes, the monitors fan out re-reads.
      for (const DsmAddr page : rm) {
        auto& w = rt.spawn_on(0, "rm-w", [&] {
          dsm.lock_acquire(rm_lock);
          dsm.write<long>(page, r);
          dsm.lock_release(rm_lock);
        });
        rt.threads().join(w);
        for (NodeId n = 1; n < static_cast<NodeId>(nodes); ++n) {
          auto& t = rt.spawn_on(n, "rm-r", [&] {
            if (checked) {
              // Abort-mode dsmcheck rightly flags unsynchronized monitor
              // reads; the checked lane orders them through the lock.
              dsm.lock_acquire(rm_lock);
              (void)dsm.read<long>(page);
              dsm.lock_release(rm_lock);
            } else {
              (void)dsm.read<long>(page);  // RC-legal stale re-read
            }
          });
          rt.threads().join(t);
        }
      }
      // Producer-consumer and false-sharing garnish every fourth round:
      // enough traffic to classify, small enough that the home-based
      // rebind's per-CS page fetch does not dominate the mix.
      const bool garnish = r % 4 == 1;
      // Producer-consumer: write one word, consume it via an ack word.
      for (const DsmAddr page : pc) {
        if (!garnish) break;
        auto& p = rt.spawn_on(1, "pc-p", [&] {
          dsm.lock_acquire(pc_lock);
          dsm.write<long>(page, r);
          dsm.lock_release(pc_lock);
        });
        rt.threads().join(p);
        auto& c = rt.spawn_on(2, "pc-c", [&] {
          dsm.lock_acquire(pc_lock);
          const long v = dsm.read<long>(page);
          dsm.write<long>(page + sizeof(long), v);
          dsm.lock_release(pc_lock);
        });
        rt.threads().join(c);
      }
      // False sharing: interleaved writers, each dirtying its own 1 KB
      // quarter of the page.
      constexpr std::uint32_t kQuarter = 1024;
      for (const DsmAddr page : fs) {
        if (!garnish) break;
        for (const NodeId w : {NodeId{1}, NodeId{2}, NodeId{1}, NodeId{3}}) {
          auto& t = rt.spawn_on(w, "fs", [&] {
            dsm.lock_acquire(fs_lock);
            for (std::uint32_t i = 0; i < kQuarter / sizeof(long); ++i) {
              dsm.write<long>(page + w * kQuarter + i * sizeof(long),
                              spread(r));
            }
            dsm.lock_release(fs_lock);
          });
          rt.threads().join(t);
        }
      }
    }
    // Synchronized verification pass: every protocol must agree on the data.
    // pc/fs last wrote on the final garnish round (largest r == 1 mod 4).
    const long last_garnish = rounds - ((rounds - 1) % 4);
    auto& v = rt.spawn_on(3, "verify", [&] {
      dsm.lock_acquire(mig_lock);
      for (const DsmAddr page : mig) {
        data_ok = data_ok && dsm.read<long>(page) == spread(2L * rounds + 2);
      }
      dsm.lock_release(mig_lock);
      dsm.lock_acquire(rm_lock);
      for (const DsmAddr page : rm) {
        data_ok = data_ok && dsm.read<long>(page) == rounds;
      }
      dsm.lock_release(rm_lock);
      dsm.lock_acquire(pc_lock);
      for (const DsmAddr page : pc) {
        data_ok = data_ok && dsm.read<long>(page + sizeof(long)) == last_garnish;
      }
      dsm.lock_release(pc_lock);
      dsm.lock_acquire(fs_lock);
      for (const DsmAddr page : fs) {
        for (const NodeId w : {NodeId{1}, NodeId{2}, NodeId{3}}) {
          data_ok = data_ok &&
                    dsm.read<long>(page + w * 1024) == spread(last_garnish);
        }
      }
      dsm.lock_release(fs_lock);
    });
    rt.threads().join(v);
  });

  if (!data_ok) {
    std::fprintf(stderr, "FATAL: %s run diverged on data\n", protocol.c_str());
    std::exit(1);
  }
  point.end_us = to_us(run_stats.end_time);
  point.total_msgs = wire_msgs(rt);
  point.total_bytes = wire_bytes(rt);
  point.proto_switches = dsm.counters().total(dsm::Counter::kProtoSwitches);
  point.classify_events = dsm.counters().total(dsm::Counter::kClassifyEvents);
  point.switch_nacks = dsm.counters().total(dsm::Counter::kSwitchNacks);
  point.pages_reclassified =
      dsm.counters().total(dsm::Counter::kPagesReclassified);
  if (adaptive) {
    const auto landing = [&](const char* pattern,
                             const std::vector<DsmAddr>& pages,
                             dsm::ProtocolId target) {
      GroupLanding g;
      g.pattern = pattern;
      g.pages = static_cast<int>(pages.size());
      for (const DsmAddr a : pages) {
        const PageId p = dsm.geometry().page_of(a);
        const dsm::ProtocolId bound = dsm.table(0).entry(p).protocol;
        if (bound == target) {
          ++g.on_target;
        } else {
          g.stray = dsm.protocols().get(bound).name;
        }
      }
      point.landings.push_back(g);
    };
    landing("migratory", mig, dsm.builtin().erc_sw);
    landing("read_mostly", rm, dsm.builtin().lrc_mw);
    landing("producer_consumer", pc, dsm.builtin().hbrc_mw);
    landing("false_sharing", fs, dsm.builtin().hbrc_mw);
  }
  return point;
}

void write_json(const std::string& path, const std::vector<Point>& points) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"adaptive\",\n"
      << "  \"driver\": \"bip_myrinet\",\n"
      << "  \"checker\": " << (checker_env() ? "true" : "false") << ",\n"
      << "  \"unit\": \"simulated_us\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"protocol\": \"%s\", \"nodes\": %d, \"rounds\": %d, "
                  "\"end_us\": %.3f, \"total_msgs\": %llu, "
                  "\"proto_switches\": %llu, \"classify_events\": %llu, "
                  "\"switch_nacks\": %llu, \"pages_reclassified\": %llu}%s\n",
                  p.protocol.c_str(), p.nodes, p.rounds, p.end_us,
                  static_cast<unsigned long long>(p.total_msgs),
                  static_cast<unsigned long long>(p.proto_switches),
                  static_cast<unsigned long long>(p.classify_events),
                  static_cast<unsigned long long>(p.switch_nacks),
                  static_cast<unsigned long long>(p.pages_reclassified),
                  i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"pattern_pages\": [\n";
  std::vector<GroupLanding> landings;
  for (const Point& p : points) {
    if (p.protocol == "adaptive" && !p.landings.empty()) {
      landings = p.landings;  // the last adaptive point of the sweep
    }
  }
  for (std::size_t i = 0; i < landings.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "    {\"pattern\": \"%s\", \"pages\": %d, "
                  "\"on_target_protocol\": %d}%s\n",
                  landings[i].pattern, landings[i].pages,
                  landings[i].on_target, i + 1 < landings.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  const bool checked = checker_env();
  const std::vector<int> sweep = smoke ? std::vector<int>{4}
                                       : std::vector<int>{4, 8};
  const int rounds = smoke ? 24 : 32;
  const std::vector<std::string> kModes = {"adaptive", "li_hudak", "erc_sw",
                                           "hbrc_mw", "lrc_mw"};

  std::printf(
      "Adaptive protocol switching vs fixed protocols — mixed workload, "
      "BIP/Myrinet%s\n%s sweep: %d migratory + %d read-mostly + %d "
      "producer-consumer + %d false-sharing pages, %d rounds\n\n",
      checked ? " (dsmcheck abort mode)" : "", smoke ? "smoke" : "full",
      kMigPages, kRmPages, kPcPages, kFsPages, rounds);

  std::vector<Point> points;
  TablePrinter table({"protocol", "nodes", "end ms", "total msgs", "wire KB",
                      "switches", "nacks", "vs adaptive"});
  for (const int nodes : sweep) {
    std::vector<Point> at_scale;
    for (const std::string& mode : kModes) {
      at_scale.push_back(measure(mode, nodes, rounds));
    }
    const double adaptive_us = at_scale.front().end_us;
    for (const Point& p : at_scale) {
      const double ratio = adaptive_us > 0 ? p.end_us / adaptive_us : 0;
      table.add_row({p.protocol, std::to_string(p.nodes),
                     TablePrinter::fmt(p.end_us / 1000.0),
                     std::to_string(p.total_msgs),
                     std::to_string(p.total_bytes / 1024),
                     std::to_string(p.proto_switches),
                     std::to_string(p.switch_nacks),
                     TablePrinter::fmt(ratio) + "x"});
      points.push_back(p);
    }
  }
  table.print();

  if (!json_path.empty()) write_json(json_path, points);

  bool pass = true;
  for (const int nodes : sweep) {
    const Point* adaptive = nullptr;
    for (const Point& p : points) {
      if (p.nodes == nodes && p.protocol == "adaptive") adaptive = &p;
    }
    // Every page group must land on its pattern's protocol.
    for (const GroupLanding& g : adaptive->landings) {
      const bool ok = g.on_target == g.pages;
      std::printf("check[%d nodes, %s pages rebound]: %d/%d%s%s: %s\n", nodes,
                  g.pattern, g.on_target, g.pages,
                  ok ? "" : ", stray on ", ok ? "" : g.stray.c_str(),
                  ok ? "PASS" : "FAIL");
      pass = pass && ok;
    }
    // And the headline: adaptive beats every fixed protocol end-to-end.
    // The checked lane reorders the monitors through the lock (see above),
    // which flattens the read-mostly gap on purpose — correctness lane, so
    // the bar drops to "no slower than any fixed protocol".
    const double bar = checked ? 1.0 : 1.3;
    for (const Point& p : points) {
      if (p.nodes != nodes || p.protocol == "adaptive") continue;
      const double ratio = p.end_us / adaptive->end_us;
      const bool ok = ratio >= bar;
      std::printf(
          "check[%d nodes, adaptive vs %s end-to-end]: %.2fx (need >= "
          "%.1fx): %s\n",
          nodes, p.protocol.c_str(), ratio, bar, ok ? "PASS" : "FAIL");
      pass = pass && ok;
    }
  }
  return pass ? 0 : 1;
}
