// Ablation A2: the twin/diff engine.
//
// Two halves:
//   1. google-benchmark micros of Diff::compute / apply / serialize on a
//      4 kB page across write densities (these are real-time numbers for the
//      engine itself);
//   2. a protocol-level sweep: bytes of diff traffic hbrc_mw ships per
//      release as the written fraction of a page grows — the design point
//      behind multiple-writer diffing (ship what changed, not the page).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "dsm/diff.hpp"
#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

using namespace dsmpm2;

namespace {

constexpr std::size_t kPage = 4096;

std::pair<std::vector<std::byte>, std::vector<std::byte>> make_pair_with_density(
    double density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> twin(kPage);
  for (auto& b : twin) b = static_cast<std::byte>(rng.next_u64());
  auto current = twin;
  const auto words = static_cast<std::size_t>(static_cast<double>(kPage / 8) * density);
  for (std::size_t i = 0; i < words; ++i) {
    const std::size_t off = rng.next_below(kPage / 8) * 8;
    current[off] = static_cast<std::byte>(rng.next_u64());
  }
  return {twin, current};
}

void BM_DiffCompute(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  auto [twin, current] = make_pair_with_density(density, 42);
  for (auto _ : state) {
    auto diff = dsm::Diff::compute(twin, current);
    benchmark::DoNotOptimize(diff);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPage);
}
BENCHMARK(BM_DiffCompute)->Arg(0)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_DiffApply(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  auto [twin, current] = make_pair_with_density(density, 43);
  const auto diff = dsm::Diff::compute(twin, current);
  std::vector<std::byte> target = twin;
  for (auto _ : state) {
    diff.apply(target);
    benchmark::DoNotOptimize(target.data());
  }
}
BENCHMARK(BM_DiffApply)->Arg(1)->Arg(10)->Arg(50);

void BM_DiffSerializeRoundTrip(benchmark::State& state) {
  auto [twin, current] = make_pair_with_density(0.1, 44);
  const auto diff = dsm::Diff::compute(twin, current);
  for (auto _ : state) {
    Packer p;
    diff.serialize(p);
    Unpacker u(p.buffer());
    auto back = dsm::Diff::deserialize(u);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_DiffSerializeRoundTrip);

/// Protocol-level sweep: how many diff bytes does one hbrc_mw release ship
/// when a remote writer dirties a given fraction of one page?
void protocol_sweep() {
  std::printf("\nhbrc_mw: diff traffic per release vs written fraction of one "
              "4 kB page\n");
  TablePrinter table({"written bytes", "diff wire bytes", "page wire bytes",
                      "savings"});
  for (const int written : {8, 64, 256, 1024, 4096}) {
    pm2::Config cfg;
    cfg.nodes = 2;
    pm2::Runtime rt(cfg);
    dsm::Dsm dsm(rt, dsm::DsmConfig{});
    dsm::AllocAttr attr;
    attr.protocol = dsm.builtin().hbrc_mw;
    const DsmAddr base = dsm.dsm_malloc(kPage, attr);
    const int lock = dsm.create_lock(dsm.builtin().hbrc_mw);
    rt.run([&] {
      auto& t = rt.spawn_on(1, "writer", [&] {
        dsm.lock_acquire(lock);
        for (int i = 0; i < written; i += 8) {
          dsm.write<std::uint64_t>(base + static_cast<DsmAddr>(i), 0xD1FFull + i);
        }
        dsm.lock_release(lock);
      });
      rt.threads().join(t);
    });
    const auto bytes = dsm.counters().total(dsm::Counter::kDiffBytesSent);
    char savings[32];
    std::snprintf(savings, sizeof savings, "%.1fx",
                  static_cast<double>(kPage) / static_cast<double>(bytes));
    table.add_row({std::to_string(written), std::to_string(bytes),
                   std::to_string(kPage), savings});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation A2 — twin/diff engine\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  protocol_sweep();
  return 0;
}
