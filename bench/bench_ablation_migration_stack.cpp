// Ablation A4: thread-migration cost versus live stack size.
//
// The paper: "Note however, that this migration time is closely related to
// the stack size of the thread. In our test program, the thread's stack was
// very small (about 1 kB), which is typically the case in many applications,
// but not in all applications." This sweep grows the live stack by real
// recursion before migrating and reports the measured cost per driver.
#include <cstdio>

#include "common/stats.hpp"
#include "pm2/pm2.hpp"

using namespace dsmpm2;

namespace {

struct Sample {
  double us;
  std::size_t image_bytes;
};

// Recurse to the requested depth (burning real stack), then migrate.
void grow_and_migrate(pm2::Runtime& rt, int frames, Sample* out) {
  if (frames > 0) {
    // A volatile buffer per frame keeps the compiler from collapsing it.
    volatile char pad[512];
    pad[0] = static_cast<char>(frames);
    grow_and_migrate(rt, frames - 1, out);
    pad[511] = pad[0];
    return;
  }
  const SimTime t0 = rt.now();
  rt.migrate_to(1);
  out->us = to_us(rt.now() - t0);
  out->image_bytes = rt.migration().last_image_bytes();
}

Sample measure(const madeleine::DriverParams& driver, int frames) {
  pm2::Config cfg;
  cfg.nodes = 2;
  cfg.driver = driver;
  pm2::Runtime rt(cfg);
  Sample s{};
  rt.run([&] {
    auto& t = rt.spawn_on(0, "m", [&] { grow_and_migrate(rt, frames, &s); });
    rt.threads().join(t);
  });
  return s;
}

}  // namespace

int main() {
  std::printf("Ablation A4 — thread migration cost (us) vs live stack size\n\n");
  const int frame_counts[] = {0, 8, 32, 128, 400};

  std::vector<std::string> header{"network"};
  for (const int f : frame_counts) {
    Sample probe = measure(madeleine::bip_myrinet(), f);
    header.push_back(std::to_string(probe.image_bytes / 1024) + "KB img");
  }
  TablePrinter table(std::move(header));
  for (const auto& driver : madeleine::builtin_drivers()) {
    std::vector<std::string> row{driver.name};
    for (const int f : frame_counts) {
      row.push_back(TablePrinter::fmt(measure(driver, f).us, 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(paper anchors: ~1 kB stack migrates in 75 us on BIP/Myrinet, "
              "62 us on SISCI/SCI)\n");
  return 0;
}
