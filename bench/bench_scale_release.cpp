// Release latency vs. write-set size: the batched release pipeline (diffs
// grouped by home into one vectored Madeleine message per home, one shared
// AckCollector wait) against the sequential one-blocking-diff-per-page
// baseline, for both diff sources of the paper:
//
//   * hbrc_mw — twin-based diffs. Historically floored at ~3x by the
//     O(page_size) twin scan per dirty page; with write-span tracking
//     (DsmConfig::track_write_spans, the default) the release reads only the
//     recorded write intervals, so the scan floor is gone. The bench
//     measures a third series — batched with `track_write_spans = false`
//     (the twin-scan baseline) — and reports the span speedup against it
//     (the >=5x ISSUE 4 acceptance point, checked at 64 pages x 8 homes);
//   * java_ic — modifications recorded on the fly through put(), so the
//     release is pure communication and batching collapses almost all of it
//     (the >=5x ISSUE 3 acceptance point is checked here).
//
// Setup per point: H+1 nodes; D single-page areas spread over H home nodes
// (1..H, fixed-home). Node 0 acquires a lock, writes one word in every page
// (fetch per page — setup, not measured), then releases: the release ships
// all D diffs to their homes. The measured cost is the simulated time of
// that lock_release.
//
// Usage: bench_scale_release [--smoke] [--json <path>]
//   --smoke   small sweep (CI: the `ctest -L smoke` entry)
//   --json    also write machine-readable results to <path>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

using namespace dsmpm2;

namespace {

struct Point {
  const char* protocol = "";
  int dirty_pages = 0;
  int homes = 0;
  double seq_us = 0;        // sequential release (spans on)
  double batch_us = 0;      // batched release (spans on)
  double twin_scan_us = 0;  // batched release, track_write_spans=false (twin
                            // protocols only; 0 elsewhere)
  [[nodiscard]] double speedup() const {
    return batch_us > 0 ? seq_us / batch_us : 0;
  }
  /// How much killing the twin scan buys on top of batching.
  [[nodiscard]] double span_speedup() const {
    return batch_us > 0 && twin_scan_us > 0 ? twin_scan_us / batch_us : 0;
  }
};

double measure_release_us(const char* protocol, int dirty_pages, int homes,
                          bool batch, bool track_spans) {
  pm2::Config cfg;
  cfg.nodes = homes + 1;
  cfg.driver = madeleine::bip_myrinet();
  pm2::Runtime rt(cfg);
  dsm::DsmConfig dc;
  dc.batch_diffs = batch;
  dc.track_write_spans = track_spans;
  dsm::Dsm dsm(rt, dc);
  const dsm::ProtocolId proto = dsm.protocol_by_name(protocol);
  DSM_CHECK(proto != dsm::kInvalidProtocol);
  const bool uses_put =
      dsm.protocols().get(proto).access_mode == dsm::AccessMode::kInlineCheck;

  // One single-page area per dirty page, homes assigned round-robin over
  // nodes 1..H — node 0 (the releaser) is home to nothing.
  std::vector<DsmAddr> pages;
  for (int p = 0; p < dirty_pages; ++p) {
    dsm::AllocAttr attr;
    attr.protocol = proto;
    attr.home_policy = dsm::HomePolicy::kFixed;
    attr.fixed_home = static_cast<NodeId>(1 + p % homes);
    pages.push_back(dsm.dsm_malloc(dsm.config().page_size, attr));
  }
  const int lock = dsm.create_lock(proto);

  SimTime elapsed = 0;
  rt.run([&] {
    dsm.lock_acquire(lock);
    // Dirty the write set: each write fetches the page from its home (and
    // for hbrc_mw snapshots a twin). Setup, excluded from the measurement.
    for (std::size_t p = 0; p < pages.size(); ++p) {
      const long value = static_cast<long>(p) + 1;
      if (uses_put) {
        dsm.put<long>(pages[p], value);
      } else {
        dsm.write<long>(pages[p], value);
      }
    }
    // The measured operation: one release shipping every diff home.
    const SimTime t0 = rt.now();
    dsm.lock_release(lock);
    elapsed = rt.now() - t0;
  });
  DSM_CHECK_MSG(dsm.counters().total(dsm::Counter::kDiffsSent) ==
                    static_cast<std::uint64_t>(dirty_pages),
                "bench invariant: one diff per dirty page");
  DSM_CHECK_MSG(dsm.counters().total(dsm::Counter::kDiffBatchesSent) ==
                    (batch ? static_cast<std::uint64_t>(homes) : 0u),
                "bench invariant: one vectored message per home iff batched");
  return to_us(elapsed);
}

void write_json(const std::string& path, const std::vector<Point>& points) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"scale_release\",\n"
      << "  \"driver\": \"bip_myrinet\",\n"
      << "  \"unit\": \"simulated_us\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "    {\"protocol\": \"%s\", \"dirty_pages\": %d, "
                  "\"homes\": %d, \"sequential_us\": %.3f, "
                  "\"batched_us\": %.3f, \"speedup\": %.2f, "
                  "\"twin_scan_us\": %.3f, \"span_speedup\": %.2f}%s\n",
                  p.protocol, p.dirty_pages, p.homes, p.seq_us, p.batch_us,
                  p.speedup(), p.twin_scan_us, p.span_speedup(),
                  i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  // (dirty pages, homes) sweep; the full sweep's 64x8 point is the ISSUE
  // acceptance bar.
  const std::vector<std::pair<int, int>> sweep =
      smoke ? std::vector<std::pair<int, int>>{{4, 2}, {16, 4}}
            : std::vector<std::pair<int, int>>{
                  {4, 2}, {8, 4}, {16, 4}, {32, 8}, {64, 8}, {128, 16}};
  const char* kProtocols[] = {"hbrc_mw", "java_ic"};

  std::printf(
      "Batched release scaling — lock_release latency, BIP/Myrinet\n"
      "%s sweep: up to %d dirty pages over %d homes\n"
      "(twin-scan us = batched release with track_write_spans=false;\n"
      " span speedup = twin-scan / batched — twin protocols only)\n\n",
      smoke ? "smoke" : "full", sweep.back().first, sweep.back().second);

  std::vector<Point> points;
  TablePrinter table({"protocol", "dirty pages", "homes", "sequential us",
                      "batched us", "twin-scan us", "batch speedup",
                      "span speedup"});
  for (const char* proto : kProtocols) {
    // track_write_spans only changes the twin-diff path, so the twin-scan
    // series is measured for the twinning protocol only.
    const bool twins = std::strcmp(proto, "hbrc_mw") == 0;
    for (const auto& [dirty, homes] : sweep) {
      Point p;
      p.protocol = proto;
      p.dirty_pages = dirty;
      p.homes = homes;
      p.seq_us = measure_release_us(proto, dirty, homes, /*batch=*/false,
                                    /*track_spans=*/true);
      p.batch_us = measure_release_us(proto, dirty, homes, /*batch=*/true,
                                      /*track_spans=*/true);
      p.twin_scan_us = twins ? measure_release_us(proto, dirty, homes,
                                                  /*batch=*/true,
                                                  /*track_spans=*/false)
                             : 0;
      table.add_row({proto, std::to_string(dirty), std::to_string(homes),
                     TablePrinter::fmt(p.seq_us), TablePrinter::fmt(p.batch_us),
                     twins ? TablePrinter::fmt(p.twin_scan_us) : "-",
                     TablePrinter::fmt(p.speedup(), 2) + "x",
                     twins ? TablePrinter::fmt(p.span_speedup(), 2) + "x"
                           : "-"});
      points.push_back(p);
    }
  }
  table.print();

  if (!json_path.empty()) write_json(json_path, points);

  // Self-checks at the widest point of the sweep.
  //   * java_ic (write log): batching must clear >= 5x (smoke >= 2x) — the
  //     pure-communication release, ISSUE 3's bar.
  //   * hbrc_mw batching: with the scan floor gone from both series this is
  //     pure communication too — >= 2x stands with margin.
  //   * hbrc_mw spans: the span-tracked release must beat the twin-scan
  //     baseline >= 5x at 64 pages x 8 homes (ISSUE 4's bar); the smoke
  //     sweep's widest point (16 x 4) carries a quarter of the scan CPU, so
  //     its bar is 2x.
  const double java_bar = smoke ? 2.0 : 5.0;
  const double hbrc_batch_bar = 2.0;
  const double span_bar = smoke ? 2.0 : 5.0;
  const auto [at_dirty, at_homes] = smoke ? sweep.back() : std::pair{64, 8};
  bool pass = true;
  for (const Point& p : points) {
    if (p.dirty_pages != at_dirty || p.homes != at_homes) continue;
    const bool is_java = std::strcmp(p.protocol, "java_ic") == 0;
    const double bar = is_java ? java_bar : hbrc_batch_bar;
    const bool ok = p.speedup() >= bar;
    std::printf("\ncheck[%s batch]: %.2fx speedup at %d pages x %d homes "
                "(need >= %.1fx): %s",
                p.protocol, p.speedup(), at_dirty, at_homes, bar,
                ok ? "PASS" : "FAIL");
    pass = pass && ok;
    if (!is_java) {
      const bool span_ok = p.span_speedup() >= span_bar;
      std::printf("\ncheck[%s span-vs-scan]: %.2fx speedup at %d pages x %d "
                  "homes (need >= %.1fx): %s",
                  p.protocol, p.span_speedup(), at_dirty, at_homes, span_bar,
                  span_ok ? "PASS" : "FAIL");
      pass = pass && span_ok;
    }
  }
  std::printf("\n");
  return pass ? 0 : 1;
}
