// Write-fault latency vs. copyset width: the parallel invalidation fan-out
// against the sequential one-blocking-round-trip-per-member baseline.
//
// Setup per point: N = sharers+1 nodes under li_hudak; node 0 writes a page,
// every other node replicates it (copyset = sharers), then node 0 writes
// again — the write fault must invalidate every replica before the write may
// proceed (sequential consistency). The measured cost is the simulated time
// of that second write.
//
// Sequential mode grows O(sharers) in network round trips; the ack-counted
// fan-out pays one round-trip depth plus per-ack processing, so the curve
// flattens. The 127-sharer point exercises a copyset wider than one 64-bit
// word (the old wire-format limit).
//
// Usage: bench_scale_invalidation [--smoke] [--json <path>]
//   --smoke   small sweep (CI: the `ctest -L smoke` entry)
//   --json    also write machine-readable results to <path>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

using namespace dsmpm2;

namespace {

struct Point {
  int sharers = 0;
  double seq_us = 0;
  double par_us = 0;
  [[nodiscard]] double speedup() const { return par_us > 0 ? seq_us / par_us : 0; }
};

double measure_write_fault_us(int sharers, bool parallel) {
  pm2::Config cfg;
  cfg.nodes = sharers + 1;
  cfg.driver = madeleine::bip_myrinet();
  pm2::Runtime rt(cfg);
  dsm::DsmConfig dc;
  dc.parallel_invalidate = parallel;
  dsm::Dsm dsm(rt, dc);
  const DsmAddr x = dsm.dsm_malloc(sizeof(long));
  SimTime elapsed = 0;
  rt.run([&] {
    dsm.write<long>(x, 1);  // node 0 owns the page with write access
    std::vector<marcel::Thread*> readers;
    for (NodeId n = 1; n <= static_cast<NodeId>(sharers); ++n) {
      readers.push_back(
          &rt.spawn_on(n, "reader", [&] { (void)dsm.read<long>(x); }));
    }
    for (auto* r : readers) rt.threads().join(*r);
    // The measured operation: one write fault whose upgrade invalidates
    // every member of the copyset before write access is granted.
    const SimTime t0 = rt.now();
    dsm.write<long>(x, 2);
    elapsed = rt.now() - t0;
  });
  DSM_CHECK_MSG(dsm.counters().total(dsm::Counter::kInvalidationsSent) ==
                    static_cast<std::uint64_t>(sharers),
                "bench invariant: one invalidation per sharer");
  return to_us(elapsed);
}

void write_json(const std::string& path, const std::vector<Point>& points) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"scale_invalidation\",\n"
      << "  \"protocol\": \"li_hudak\",\n  \"driver\": \"bip_myrinet\",\n"
      << "  \"unit\": \"simulated_us\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"nodes\": %d, \"sharers\": %d, \"sequential_us\": "
                  "%.3f, \"parallel_us\": %.3f, \"speedup\": %.2f}%s\n",
                  p.sharers + 1, p.sharers, p.seq_us, p.par_us, p.speedup(),
                  i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<int> sweep =
      smoke ? std::vector<int>{1, 4, 8}
            : std::vector<int>{1, 2, 4, 8, 16, 32, 64, 127};

  std::printf("Invalidation fan-out scaling — write-fault latency, li_hudak, "
              "BIP/Myrinet\n%s sweep: nodes 2 -> %d\n\n",
              smoke ? "smoke" : "full", sweep.back() + 1);

  std::vector<Point> points;
  TablePrinter table({"nodes", "copyset", "sequential us", "fan-out us", "speedup"});
  for (const int sharers : sweep) {
    Point p;
    p.sharers = sharers;
    p.seq_us = measure_write_fault_us(sharers, /*parallel=*/false);
    p.par_us = measure_write_fault_us(sharers, /*parallel=*/true);
    table.add_row({std::to_string(sharers + 1), std::to_string(sharers),
                   TablePrinter::fmt(p.seq_us), TablePrinter::fmt(p.par_us),
                   TablePrinter::fmt(p.speedup(), 2) + "x"});
    points.push_back(p);
  }
  table.print();

  if (!json_path.empty()) write_json(json_path, points);

  // Self-check: the fan-out must collapse the O(copyset) round-trip chain.
  // Full sweep: >= 4x at 32 sharers (the ISSUE acceptance bar); smoke sweep:
  // >= 2x at its widest point.
  const double bar = smoke ? 2.0 : 4.0;
  const int at = smoke ? sweep.back() : 32;
  for (const Point& p : points) {
    if (p.sharers != at) continue;
    std::printf("\ncheck: %.2fx speedup at %d sharers (need >= %.1fx): %s\n",
                p.speedup(), at, bar, p.speedup() >= bar ? "PASS" : "FAIL");
    return p.speedup() >= bar ? 0 : 1;
  }
  std::fprintf(stderr, "sweep missing the %d-sharer check point\n", at);
  return 1;
}
