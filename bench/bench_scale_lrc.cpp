// Eager vs lazy release consistency under lock migration: erc_sw (release
// sweep-invalidates every written page's copyset, whether or not anyone will
// ever look) against lrc_mw (release ships write notices on the lock grant;
// only the next acquirer invalidates, and diffs travel on demand via
// dsm.diff_req).
//
// Workload per point: N nodes, P single-page areas, two writer nodes passing
// the lock back and forth (cross-node hand-off every critical section) and
// N-2 read-mostly monitor nodes that re-read the written page after every
// section WITHOUT synchronizing — the paper-era RC scenario (§2.2): stale
// reads outside the critical section are legal, so a consistency protocol
// only owes fresh data to acquirers. Eager release consistency pays for the
// monitors anyway — every erc_sw release invalidates the written page's
// whole copyset (~N-1 nodes) and every monitor refetches — while lrc_mw
// ships one write notice on the grant, lets monitors keep their RC-legal
// copies for free, and only the other writer's next fault pulls a diff.
//
// Measured over the lock-migration phase:
//   * invalidation/diff messages — invalidations + eagerly pushed diffs +
//     lazy diff pulls (the consistency traffic the ISSUE acceptance bars);
//   * hand-off latency — mean lock_release + mean lock_acquire time, plus
//     the mean full critical-section time (faults included) for honesty:
//     laziness moves work from the releaser to the acquirer's faults.
//
// Usage: bench_scale_lrc [--smoke] [--json <path>]
//   --smoke   small sweep (CI: the `ctest -L smoke` entry)
//   --json    also write machine-readable results to <path>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

using namespace dsmpm2;

namespace {

constexpr int kPages = 8;

struct Point {
  const char* protocol = "";
  int nodes = 0;
  int rounds = 0;
  std::uint64_t inval_diff_msgs = 0;  // invalidations + diffs + diff pulls
  std::uint64_t total_msgs = 0;       // every wire message of the phase
  double release_us = 0;              // mean lock_release latency
  double acquire_us = 0;              // mean lock_acquire latency
  double cs_us = 0;                   // mean acquire..release round
  SimTime end_time = 0;               // simulated end of the whole run
  [[nodiscard]] double handoff_us() const { return release_us + acquire_us; }
};

/// Host-side cost of running the same point with dsmcheck on: the checker
/// charges no simulated time (sim_identical asserts that), so its price is
/// real seconds only.
struct OverheadPoint {
  int nodes = 0;
  double host_ms_off = 0;
  double host_ms_on = 0;
  bool sim_identical = false;  // same end_time and wire traffic on vs off
  [[nodiscard]] double overhead_x() const {
    return host_ms_off > 0 ? host_ms_on / host_ms_off : 0;
  }
};

std::uint64_t consistency_msgs(dsm::Dsm& d) {
  return d.counters().total(dsm::Counter::kInvalidationsSent) +
         d.counters().total(dsm::Counter::kDiffsSent) +
         d.counters().total(dsm::Counter::kDiffBatchesSent) +
         d.counters().total(dsm::Counter::kDiffFetchesSent);
}

std::uint64_t wire_msgs(pm2::Runtime& rt) {
  std::uint64_t sum = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(rt.node_count()); ++n) {
    sum += rt.network().stats(n).messages_sent;
  }
  return sum;
}

Point measure(const char* protocol, int nodes, bool with_checker = false) {
  pm2::Config cfg;
  cfg.nodes = nodes;
  cfg.driver = madeleine::bip_myrinet();
  pm2::Runtime rt(cfg);
  dsm::DsmConfig dcfg;
  // Count mode, not abort mode: the monitors re-read WITHOUT synchronizing
  // on purpose (stale reads are RC-legal), and dsmcheck rightly flags that.
  dcfg.enable_checker = with_checker;
  dcfg.checker_abort = false;
  dsm::Dsm dsm(rt, dcfg);
  const dsm::ProtocolId proto = dsm.protocol_by_name(protocol);
  DSM_CHECK(proto != dsm::kInvalidProtocol);

  // Pages homed on a monitor node; writers and monitors all cache them.
  std::vector<DsmAddr> pages;
  for (int p = 0; p < kPages; ++p) {
    dsm::AllocAttr attr;
    attr.protocol = proto;
    attr.home_policy = dsm::HomePolicy::kFixed;
    attr.fixed_home = static_cast<NodeId>(nodes - 1);
    pages.push_back(dsm.dsm_malloc(dsm.config().page_size, attr));
  }
  const int lock = dsm.create_lock(proto);

  Point point;
  point.protocol = protocol;
  point.nodes = nodes;
  point.rounds = 2 * nodes;
  SimTime release_total = 0;
  SimTime acquire_total = 0;
  SimTime cs_total = 0;

  const pm2::RunStats run_stats = rt.run([&] {
    // Seed phase (not measured): replicate every page everywhere.
    for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
      auto& t = rt.spawn_on(n, "seed", [&] {
        for (const DsmAddr p : pages) (void)dsm.read<long>(p);
      });
      rt.threads().join(t);
    }
    const std::uint64_t msgs0 = wire_msgs(rt);
    const std::uint64_t cons0 = consistency_msgs(dsm);

    // Lock-migration phase: the two writers pass the lock back and forth;
    // each critical section writes one word of a rotating page.
    for (int r = 0; r < point.rounds; ++r) {
      const NodeId holder = static_cast<NodeId>(r % 2);
      const DsmAddr target = pages[static_cast<std::size_t>(r % kPages)];
      auto& w = rt.spawn_on(holder, "cs", [&] {
        const SimTime t0 = rt.now();
        dsm.lock_acquire(lock);
        const SimTime t1 = rt.now();
        dsm.write<long>(target, static_cast<long>(r) + 1);
        const SimTime t2 = rt.now();
        dsm.lock_release(lock);
        acquire_total += t1 - t0;
        release_total += rt.now() - t2;
        cs_total += rt.now() - t0;
      });
      rt.threads().join(w);
      // Monitors (and the idle writer) re-read the written page WITHOUT
      // taking the lock. Under erc_sw their copies were just invalidated, so
      // each re-read refetches; under lrc_mw the monitors still hold RC-legal
      // copies and cost nothing — only the other writer, which synchronized,
      // patches its copy with one diff pull.
      for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
        if (n == holder) continue;
        auto& reader = rt.spawn_on(n, "rd", [&] { (void)dsm.read<long>(target); });
        rt.threads().join(reader);
      }
    }

    point.inval_diff_msgs = consistency_msgs(dsm) - cons0;
    point.total_msgs = wire_msgs(rt) - msgs0;
  });

  point.end_time = run_stats.end_time;
  point.release_us = to_us(release_total) / point.rounds;
  point.acquire_us = to_us(acquire_total) / point.rounds;
  point.cs_us = to_us(cs_total) / point.rounds;
  return point;
}

OverheadPoint measure_overhead(int nodes) {
  using clock = std::chrono::steady_clock;
  OverheadPoint o;
  o.nodes = nodes;
  const auto t0 = clock::now();
  const Point off = measure("lrc_mw", nodes, /*with_checker=*/false);
  const auto t1 = clock::now();
  const Point on = measure("lrc_mw", nodes, /*with_checker=*/true);
  const auto t2 = clock::now();
  o.host_ms_off = std::chrono::duration<double, std::milli>(t1 - t0).count();
  o.host_ms_on = std::chrono::duration<double, std::milli>(t2 - t1).count();
  o.sim_identical =
      off.end_time == on.end_time && off.total_msgs == on.total_msgs;
  return o;
}

void write_json(const std::string& path, const std::vector<Point>& points,
                const std::vector<OverheadPoint>& overhead) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"scale_lrc\",\n"
      << "  \"driver\": \"bip_myrinet\",\n"
      << "  \"pages\": " << kPages << ",\n"
      << "  \"unit\": \"simulated_us\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "    {\"protocol\": \"%s\", \"nodes\": %d, \"rounds\": %d, "
                  "\"inval_diff_msgs\": %llu, \"total_msgs\": %llu, "
                  "\"release_us\": %.3f, \"acquire_us\": %.3f, "
                  "\"handoff_us\": %.3f, \"cs_us\": %.3f}%s\n",
                  p.protocol, p.nodes, p.rounds,
                  static_cast<unsigned long long>(p.inval_diff_msgs),
                  static_cast<unsigned long long>(p.total_msgs), p.release_us,
                  p.acquire_us, p.handoff_us(), p.cs_us,
                  i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"checker_overhead\": [\n";
  for (std::size_t i = 0; i < overhead.size(); ++i) {
    const OverheadPoint& o = overhead[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"protocol\": \"lrc_mw\", \"nodes\": %d, "
                  "\"host_ms_off\": %.2f, \"host_ms_on\": %.2f, "
                  "\"overhead_x\": %.3f, \"sim_identical\": %s}%s\n",
                  o.nodes, o.host_ms_off, o.host_ms_on, o.overhead_x(),
                  o.sim_identical ? "true" : "false",
                  i + 1 < overhead.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<int> sweep = smoke ? std::vector<int>{4}
                                       : std::vector<int>{4, 8, 16};
  const char* kProtocols[] = {"erc_sw", "lrc_mw"};

  std::printf(
      "Eager vs lazy release consistency — migrating lock, BIP/Myrinet\n"
      "%s sweep: %d pages, rounds = 2 x nodes, readers re-read after every "
      "critical section\n\n",
      smoke ? "smoke" : "full", kPages);

  std::vector<Point> points;
  TablePrinter table({"protocol", "nodes", "rounds", "inval/diff msgs",
                      "total msgs", "release us", "acquire us", "handoff us",
                      "cs us"});
  for (const char* proto : kProtocols) {
    for (const int nodes : sweep) {
      Point p = measure(proto, nodes);
      table.add_row({p.protocol, std::to_string(p.nodes),
                     std::to_string(p.rounds),
                     std::to_string(p.inval_diff_msgs),
                     std::to_string(p.total_msgs),
                     TablePrinter::fmt(p.release_us),
                     TablePrinter::fmt(p.acquire_us),
                     TablePrinter::fmt(p.handoff_us()),
                     TablePrinter::fmt(p.cs_us)});
      points.push_back(p);
    }
  }
  table.print();

  // dsmcheck overhead series: same lrc_mw points, checker off vs on, host
  // wall-clock. The simulated run must be bit-identical either way.
  std::vector<OverheadPoint> overhead;
  TablePrinter ck_table(
      {"nodes", "host ms (off)", "host ms (on)", "overhead", "sim identical"});
  for (const int nodes : sweep) {
    OverheadPoint o = measure_overhead(nodes);
    ck_table.add_row({std::to_string(o.nodes),
                      TablePrinter::fmt(o.host_ms_off),
                      TablePrinter::fmt(o.host_ms_on),
                      TablePrinter::fmt(o.overhead_x()) + "x",
                      o.sim_identical ? "yes" : "NO"});
    overhead.push_back(o);
  }
  std::printf("\ndsmcheck overhead (lrc_mw, host wall-clock)\n");
  ck_table.print();

  if (!json_path.empty()) write_json(json_path, points, overhead);

  // Self-check at the widest point of the sweep: lrc_mw must cut the
  // invalidation/diff message count vs erc_sw by >= 3x at 16 nodes (the
  // ISSUE acceptance bar); the 4-node smoke point carries proportionally
  // fewer sharers, so its bar is 2x.
  const double bar = smoke ? 2.0 : 3.0;
  const int at_nodes = sweep.back();
  bool pass = true;
  std::uint64_t eager = 0;
  std::uint64_t lazy = 0;
  for (const Point& p : points) {
    if (p.nodes != at_nodes) continue;
    if (std::strcmp(p.protocol, "erc_sw") == 0) eager = p.inval_diff_msgs;
    if (std::strcmp(p.protocol, "lrc_mw") == 0) lazy = p.inval_diff_msgs;
  }
  // A perfectly lazy run can send ZERO consistency messages (nothing the
  // acquirers touched was stale); floor the divisor at one message.
  const double ratio =
      static_cast<double>(eager) / static_cast<double>(lazy > 0 ? lazy : 1);
  const bool ok = ratio >= bar;
  std::printf("\ncheck[eager/lazy inval+diff msgs]: %.2fx at %d nodes "
              "(need >= %.1fx): %s\n",
              ratio, at_nodes, bar, ok ? "PASS" : "FAIL");
  pass = pass && ok;

  // The checker must never perturb the simulation: same end time, same
  // wire traffic, with it on or off, at every sampled point.
  bool identical = true;
  for (const OverheadPoint& o : overhead) identical = identical && o.sim_identical;
  std::printf("check[checker on/off sim identical]: %s\n",
              identical ? "PASS" : "FAIL");
  pass = pass && identical;
  return pass ? 0 : 1;
}
