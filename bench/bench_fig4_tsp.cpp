// Reproduces Figure 4: "Solving TSP for 14 cities with random inter-city
// distances: Comparison of 4 DSM protocols" on BIP/Myrinet, one application
// thread per node.
//
// The paper's finding: "all protocols based on page migration perform better
// than the protocol using thread migration. This is essentially due to the
// fact that all computing threads migrate to the node holding the shared
// variable, which thus gets overloaded." The four protocols are the two
// sequential-consistency ones (li_hudak, migrate_thread) and the two
// release-consistency ones (erc_sw, hbrc_mw); since the only intensively
// shared variable is lock-protected, RC shows no extra benefit over SC here
// — also the paper's observation.
#include <cstdio>

#include "apps/tsp.hpp"
#include "common/stats.hpp"
#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

using namespace dsmpm2;

namespace {

struct RunOutcome {
  double ms;
  int best;
  double node0_cpu_share;  // fraction of total busy time burned on node 0
};

RunOutcome run_one(const char* protocol, int nodes, int cities) {
  pm2::Config cfg;
  cfg.nodes = nodes;
  cfg.driver = madeleine::bip_myrinet();
  pm2::Runtime rt(cfg);
  dsm::Dsm dsm(rt, dsm::DsmConfig{});
  apps::TspConfig tsp;
  tsp.n_cities = cities;
  tsp.protocol = dsm.protocol_by_name(protocol);
  apps::TspResult result;
  rt.run([&] { result = apps::run_tsp(rt, dsm, tsp); });
  SimTime busy_total = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
    busy_total += rt.cluster().node(n).cpu().busy_time();
  }
  RunOutcome out;
  out.ms = to_ms(result.elapsed);
  out.best = result.best_length;
  out.node0_cpu_share = busy_total > 0
                            ? static_cast<double>(rt.cluster().node(0).cpu().busy_time()) /
                                  static_cast<double>(busy_total)
                            : 0.0;
  return out;
}

}  // namespace

int main() {
  const int cities = 14;
  const char* protocols[] = {"li_hudak", "migrate_thread", "erc_sw", "hbrc_mw"};
  const int node_counts[] = {1, 2, 4, 8};

  std::printf("Figure 4 — TSP, %d cities, random distances, BIP/Myrinet, one "
              "application thread per node\n", cities);
  std::printf("cells: virtual run time in ms (node-0 CPU share)\n\n");

  double ms[4][4];
  TablePrinter table({"protocol", "1 node", "2 nodes", "4 nodes", "8 nodes"});
  for (int p = 0; p < 4; ++p) {
    std::vector<std::string> row{protocols[p]};
    for (int n = 0; n < 4; ++n) {
      const auto out = run_one(protocols[p], node_counts[n], cities);
      ms[p][n] = out.ms;
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.1f (%.0f%%)", out.ms,
                    out.node0_cpu_share * 100.0);
      row.emplace_back(buf);
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nshape checks (paper's findings):\n");
  const bool pages_beat_migration =
      ms[0][3] < ms[1][3] && ms[2][3] < ms[1][3] && ms[3][3] < ms[1][3];
  std::printf("  page-based protocols beat migrate_thread at 8 nodes: %s\n",
              pages_beat_migration ? "HOLDS" : "VIOLATED");
  const bool pages_scale = ms[0][3] < ms[0][0] && ms[2][3] < ms[2][0];
  std::printf("  page-based protocols speed up with nodes:           %s\n",
              pages_scale ? "HOLDS" : "VIOLATED");
  const bool rc_no_benefit =
      ms[2][2] > 0.8 * ms[0][2] && ms[3][2] > 0.8 * ms[0][2];
  std::printf("  RC shows no big win over SC (lock-protected variable): %s\n",
              rc_no_benefit ? "HOLDS" : "VIOLATED");
  return 0;
}
