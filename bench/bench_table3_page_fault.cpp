// Reproduces Table 3: "Processing a read-fault under page-migration policy:
// Performance analysis" — the per-step cost of a remote read fault under a
// page-transfer protocol (li_hudak), on all four network drivers.
//
// Paper values (µs):
//   Operation          BIP/Myrinet  TCP/Myrinet  TCP/FastEthernet  SISCI/SCI
//   Page fault              11           11             11             11
//   Request page            23          220            220             38
//   Page transfer          138          343            736            119
//   Protocol overhead       26           26             26             26
//   Total                  198          600            993            194
//
// The measured transfer is ~1.3 µs above the paper's bare-4 kB anchor
// because the message carries real headers in addition to the page.
#include <cstdio>

#include "common/stats.hpp"
#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

using namespace dsmpm2;

namespace {

struct Row {
  const char* op;
  double paper[4];
};

const Row kPaper[] = {
    {"Page fault", {11, 11, 11, 11}},
    {"Request page", {23, 220, 220, 38}},
    {"Page transfer", {138, 343, 736, 119}},
    {"Protocol overhead", {26, 26, 26, 26}},
    {"Total", {198, 600, 993, 194}},
};

dsm::FaultProbe::Breakdown measure(const madeleine::DriverParams& driver) {
  pm2::Config cfg;
  cfg.nodes = 2;
  cfg.driver = driver;
  pm2::Runtime rt(cfg);
  dsm::DsmConfig dc;
  dc.enable_fault_probe = true;
  dsm::Dsm dsm(rt, dc);
  const DsmAddr x = dsm.dsm_malloc(sizeof(int));
  rt.run([&] {
    dsm.write<int>(x, 1);  // the page lives on node 0
    auto& t = rt.spawn_on(1, "reader", [&] { (void)dsm.read<int>(x); });
    rt.threads().join(t);
  });
  return dsm.probe().breakdown(1);
}

}  // namespace

int main() {
  std::printf("Table 3 — read fault, page-transfer policy (li_hudak), 4 kB page\n");
  std::printf("each cell: measured us (paper us)\n\n");

  dsm::FaultProbe::Breakdown got[4];
  const auto& drivers = madeleine::builtin_drivers();
  for (int d = 0; d < 4; ++d) got[d] = measure(drivers[static_cast<std::size_t>(d)]);

  std::vector<std::string> header{"Operation"};
  for (const auto& d : drivers) header.push_back(d.name);
  TablePrinter table(std::move(header));
  auto add = [&](const Row& row, auto select) {
    std::vector<std::string> cells{row.op};
    for (int d = 0; d < 4; ++d) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.1f (%.0f)", select(got[d]), row.paper[d]);
      cells.emplace_back(buf);
    }
    table.add_row(std::move(cells));
  };
  add(kPaper[0], [](const auto& b) { return b.fault_us; });
  add(kPaper[1], [](const auto& b) { return b.request_us; });
  add(kPaper[2], [](const auto& b) { return b.transfer_us; });
  add(kPaper[3], [](const auto& b) { return b.overhead_us; });
  add(kPaper[4], [](const auto& b) { return b.total_us; });
  table.print();

  std::printf("\nshape check: SISCI/SCI < BIP/Myrinet < TCP/Myrinet < TCP/FE "
              "on total: %s\n",
              got[3].total_us < got[0].total_us &&
                      got[0].total_us < got[1].total_us &&
                      got[1].total_us < got[2].total_us
                  ? "HOLDS"
                  : "VIOLATED");
  return 0;
}
