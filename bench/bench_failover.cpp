// Failover cost: what replication adds in steady state, and what a node
// death costs end to end (the bugfix PR's acceptance bench).
//
// One workload — every node except the designated victim runs lock-protected
// critical sections against a page homed AT the victim, with the lock also
// managed by the victim (legacy striding pins both roles there) — swept over
// the cluster sizes and run as three series:
//
//   * off       — enable_failover=false. The baseline; also the bit-identity
//                 reference: every failover counter must stay at zero.
//   * shadowed  — enable_failover=true, nobody dies. The steady-state price:
//                 heartbeat pings plus shadow pushes on the wire, and
//                 whatever they add to the completion time.
//   * killed    — enable_failover=true and the victim is killed mid-run. The
//                 survivors must detect, promote the striped backup, and
//                 finish with the exact same final value as the other two
//                 series — node death costs time, never data.
//
// Measured per point: completion time, wire messages, heartbeats, shadow
// bytes, and the recovery overhead (killed vs shadowed completion time).
// The self-checks assert the ISSUE acceptance bars: the off series keeps
// every new counter at zero, the killed series converges to the no-death
// final value with exactly one failover, and the backup ends up holding the
// victim's lock-manager and home roles.
//
// Usage: bench_failover [--smoke] [--json <path>]
//   --smoke   small sweep (CI: the `ctest -L fault` entry)
//   --json    also write machine-readable results to <path>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

using namespace dsmpm2;
using namespace dsmpm2::time_literals;

namespace {

constexpr int kRounds = 16;

enum class Series { kOff, kShadowed, kKilled };

const char* series_name(Series s) {
  switch (s) {
    case Series::kOff: return "off";
    case Series::kShadowed: return "shadowed";
    case Series::kKilled: return "killed";
  }
  return "?";
}

struct Point {
  Series series = Series::kOff;
  int nodes = 0;
  double end_ms = 0;
  std::uint64_t msgs = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t replica_bytes = 0;
  std::uint64_t failovers = 0;
  std::uint64_t promotions = 0;
  long final_value = 0;
  bool manager_on_backup = false;
  bool home_on_backup = false;
};

std::uint64_t wire_msgs(pm2::Runtime& rt) {
  std::uint64_t sum = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(rt.node_count()); ++n) {
    sum += rt.network().stats(n).messages_sent;
  }
  return sum;
}

Point measure(int nodes, Series series) {
  pm2::Config pcfg;
  pcfg.nodes = nodes;
  pcfg.driver = madeleine::bip_myrinet();
  pm2::Runtime rt(pcfg);
  dsm::DsmConfig cfg;
  cfg.enable_failover = series != Series::kOff;
  cfg.legacy_lock_striding = true;  // lock id 1 -> manager node 1
  dsm::Dsm dsm(rt, cfg);

  const NodeId victim = 1;
  const NodeId backup = (victim + 1) % static_cast<NodeId>(nodes);
  const dsm::ProtocolId proto = dsm.protocol_by_name("hbrc_mw");
  dsm::AllocAttr attr;
  attr.protocol = proto;
  attr.home_policy = dsm::HomePolicy::kFixed;
  attr.fixed_home = victim;
  const DsmAddr x = dsm.dsm_malloc(sizeof(long), attr);
  const PageId page = dsm.geometry().page_of(x);
  (void)dsm.create_lock(proto);
  const int lock = dsm.create_lock(proto);  // id 1 -> the victim

  Point point;
  point.series = series;
  point.nodes = nodes;

  const pm2::RunStats stats = rt.run([&] {
    if (series == Series::kKilled) {
      rt.scheduler().schedule_background_at(1_ms,
                                            [&] { rt.kill_node(victim); });
    }
    std::vector<marcel::Thread*> workers;
    for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
      if (n == victim) continue;  // the victim runs no application threads
      workers.push_back(&rt.spawn_on(n, "worker" + std::to_string(n), [&] {
        for (int r = 0; r < kRounds; ++r) {
          dsm.lock_acquire(lock);
          dsm.write<long>(x, dsm.read<long>(x) + 1);
          dsm.lock_release(lock);
          rt.compute(20_us);
        }
      }));
    }
    for (auto* w : workers) rt.threads().join(*w);
    dsm.lock_acquire(lock);
    point.final_value = dsm.read<long>(x);
    dsm.lock_release(lock);
  });

  point.end_ms = to_us(stats.end_time) / 1000.0;
  point.msgs = wire_msgs(rt);
  point.heartbeats = dsm.counters().total(dsm::Counter::kHeartbeats);
  point.replica_bytes = dsm.counters().total(dsm::Counter::kReplicaBytes);
  point.failovers = dsm.counters().total(dsm::Counter::kFailovers);
  point.promotions = dsm.counters().total(dsm::Counter::kPromotions);
  point.manager_on_backup = dsm.locks().current_manager(lock) == backup;
  point.home_on_backup = dsm.table(0).entry(page).home == backup;
  return point;
}

void write_json(const std::string& path, const std::vector<Point>& points) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"failover\",\n"
      << "  \"driver\": \"bip_myrinet\",\n"
      << "  \"unit\": \"simulated_ms\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    char buf[320];
    std::snprintf(
        buf, sizeof buf,
        "    {\"series\": \"%s\", \"nodes\": %d, \"end_ms\": %.3f, "
        "\"msgs\": %llu, \"heartbeats\": %llu, \"replica_bytes\": %llu, "
        "\"failovers\": %llu, \"promotions\": %llu, \"final_value\": %ld}%s\n",
        series_name(p.series), p.nodes, p.end_ms,
        static_cast<unsigned long long>(p.msgs),
        static_cast<unsigned long long>(p.heartbeats),
        static_cast<unsigned long long>(p.replica_bytes),
        static_cast<unsigned long long>(p.failovers),
        static_cast<unsigned long long>(p.promotions), p.final_value,
        i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<int> sweep =
      smoke ? std::vector<int>{4} : std::vector<int>{4, 8, 16};

  std::printf(
      "Failover cost: shadowing overhead and node-death recovery — "
      "BIP/Myrinet\n%s sweep, %d critical sections per surviving node\n\n",
      smoke ? "smoke" : "full", kRounds);

  std::vector<Point> points;
  TablePrinter table({"series", "nodes", "end ms", "msgs", "heartbeats",
                      "replica bytes", "failovers", "final value"});
  for (const int nodes : sweep) {
    for (const Series s : {Series::kOff, Series::kShadowed, Series::kKilled}) {
      const Point p = measure(nodes, s);
      table.add_row({series_name(p.series), std::to_string(p.nodes),
                     TablePrinter::fmt(p.end_ms), std::to_string(p.msgs),
                     std::to_string(p.heartbeats),
                     std::to_string(p.replica_bytes),
                     std::to_string(p.failovers),
                     std::to_string(p.final_value)});
      points.push_back(p);
    }
  }
  table.print();

  const auto find = [&](Series s, int nodes) {
    for (const Point& p : points) {
      if (p.series == s && p.nodes == nodes) return p;
    }
    return Point{};
  };

  bool pass = true;
  const int at_nodes = sweep.back();
  const Point off = find(Series::kOff, at_nodes);
  const Point shadowed = find(Series::kShadowed, at_nodes);
  const Point killed = find(Series::kKilled, at_nodes);
  const long want = (at_nodes - 1) * static_cast<long>(kRounds);

  // Bar 1: failover off takes none of the new paths.
  bool off_clean = true;
  for (const Point& p : points) {
    if (p.series != Series::kOff) continue;
    off_clean = off_clean && p.heartbeats == 0 && p.replica_bytes == 0 &&
                p.failovers == 0 && p.promotions == 0;
  }
  std::printf("\ncheck[failover-off counters all zero]: %s\n",
              off_clean ? "PASS" : "FAIL");
  pass = pass && off_clean;

  // Bar 2: every series converges to the same final value — the death cost
  // time, not data.
  const bool value_ok = off.final_value == want &&
                        shadowed.final_value == want &&
                        killed.final_value == want;
  std::printf("check[final value %ld in all series]: %s\n", want,
              value_ok ? "PASS" : "FAIL");
  pass = pass && value_ok;

  // Bar 3: the killed run detected exactly one death and the backup ended
  // up holding both of the victim's roles.
  const bool roles_ok = killed.failovers == 1 && killed.promotions >= 1 &&
                        killed.manager_on_backup && killed.home_on_backup;
  std::printf("check[one failover, roles on the backup]: %s\n",
              roles_ok ? "PASS" : "FAIL");
  pass = pass && roles_ok;

  // Bar 4: shadowing actually runs when enabled (the overhead being
  // measured is real, not a silent no-op).
  const bool shadow_ok = shadowed.heartbeats > 0 && shadowed.replica_bytes > 0;
  std::printf("check[shadowing active in the on series]: %s\n",
              shadow_ok ? "PASS" : "FAIL");
  pass = pass && shadow_ok;

  if (!json_path.empty()) write_json(json_path, points);
  return pass ? 0 : 1;
}
