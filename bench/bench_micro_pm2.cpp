// Reproduces the paper's §2.1 in-text micro measurements of the PM2 runtime:
//
//   "The minimal latency of a RPC is 6 µs over SISCI/SCI and 8 µs over
//    BIP/Myrinet on our local Linux clusters."
//   "Migrating a thread with a minimal stack and no attached data takes
//    62 µs over SISCI/SCI and 75 µs over BIP/Myrinet."
#include <cstdio>

#include "common/stats.hpp"
#include "pm2/pm2.hpp"

using namespace dsmpm2;

namespace {

double rpc_one_way_us(const madeleine::DriverParams& driver) {
  pm2::Config cfg;
  cfg.nodes = 2;
  cfg.driver = driver;
  pm2::Runtime rt(cfg);
  auto& rpc = rt.rpc();
  const auto echo = rpc.register_service(
      "echo", pm2::Dispatch::kInline,
      [](pm2::RpcContext& ctx, Unpacker&) { ctx.reply(Packer{}); });
  SimTime round_trip = 0;
  rt.run([&] {
    const SimTime t0 = rt.now();
    rpc.call(1, echo, Packer{});
    round_trip = rt.now() - t0;
  });
  return to_us(round_trip) / 2.0;
}

struct MigrationSample {
  double us;
  std::size_t image_bytes;
};

MigrationSample migration_us(const madeleine::DriverParams& driver) {
  pm2::Config cfg;
  cfg.nodes = 2;
  cfg.driver = driver;
  pm2::Runtime rt(cfg);
  MigrationSample s{};
  rt.run([&] {
    // A minimal thread: migrate straight away, as shallow as it gets.
    auto& t = rt.spawn_on(0, "m", [&] {
      const SimTime t0 = rt.now();
      rt.migrate_to(1);
      s.us = to_us(rt.now() - t0);
      s.image_bytes = rt.migration().last_image_bytes();
    });
    rt.threads().join(t);
  });
  return s;
}

}  // namespace

int main() {
  std::printf("PM2 micro benchmarks (paper section 2.1)\n\n");
  const struct {
    madeleine::DriverParams driver;
    double paper_rpc;
    double paper_migration;
  } cases[] = {
      {madeleine::sisci_sci(), 6.0, 62.0},
      {madeleine::bip_myrinet(), 8.0, 75.0},
      {madeleine::tcp_myrinet(), -1, -1},      // not quoted in the paper
      {madeleine::tcp_fast_ethernet(), -1, -1},
  };

  TablePrinter table({"network", "rpc one-way us", "paper", "migration us",
                      "paper", "image bytes"});
  for (const auto& c : cases) {
    const double rpc = rpc_one_way_us(c.driver);
    const auto mig = migration_us(c.driver);
    auto paper_str = [](double v) {
      return v < 0 ? std::string("-") : TablePrinter::fmt(v, 0);
    };
    table.add_row({c.driver.name, TablePrinter::fmt(rpc, 2), paper_str(c.paper_rpc),
                   TablePrinter::fmt(mig.us, 1), paper_str(c.paper_migration),
                   std::to_string(mig.image_bytes)});
  }
  table.print();
  return 0;
}
