// Quickstart: the paper's Figure 2 in this library's API.
//
//   #include "pm2.h"
//   BEGIN_DSM_DATA
//   int x = 34;
//   END_DSM_DATA
//   void main (void) {
//     pm2_dsm_set_default_protocol(li_hudak);
//     pm2_init();
//     x++;
//   }
//
// Here: build a 4-node cluster over BIP/Myrinet, declare one shared int
// managed by the li_hudak protocol, increment it from every node under a DSM
// lock, and print what happened.
#include <cstdio>

#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

#include "example_config.hpp"

using namespace dsmpm2;

int main() {
  pm2::Config pm2_cfg;
  pm2_cfg.nodes = 4;
  pm2_cfg.driver = madeleine::bip_myrinet();
  pm2::Runtime rt(pm2_cfg);
  dsm::Dsm dsm(rt, example_dsm_config());

  // "Use the built-in 'li_hudak' protocol."
  dsm.set_default_protocol(dsm.builtin().li_hudak);

  // The static shared area of Figure 2: int x = 34.
  dsm::AllocAttr attr;
  attr.name = "static_dsm_data";
  const DsmAddr x = dsm.dsm_malloc(sizeof(int), attr);

  const int lock = dsm.create_lock();

  rt.run([&] {
    dsm.write<int>(x, 34);  // the initializer of Figure 2's `int x = 34;`
    std::vector<marcel::Thread*> threads;
    for (NodeId node = 0; node < 4; ++node) {
      threads.push_back(&rt.spawn_on(node, "incrementer", [&] {
        dsm.lock_acquire(lock);
        const int value = dsm.read<int>(x);
        dsm.write<int>(x, value + 1);
        std::printf("[node %u @ %8.1fus] x: %d -> %d\n", rt.self_node(),
                    to_us(rt.now()), value, value + 1);
        dsm.lock_release(lock);
      }));
    }
    for (auto* t : threads) rt.threads().join(*t);
    std::printf("final x = %d (expected 38)\n", dsm.read<int>(x));
  });

  std::printf("\n--- post-mortem report ---\n%s", dsm.report().c_str());
  return 0;
}
