// The paper's Figure 4 workload as a standalone program: branch-and-bound
// TSP over DSM, protocol and cluster chosen on the command line.
//
//   ./example_tsp [protocol] [nodes] [cities]
//   protocol: li_hudak | migrate_thread | erc_sw | hbrc_mw | hybrid_rw
//
// Demonstrates the platform's switching story: the application code is the
// same for every protocol; only the selection differs — "switching from one
// protocol to another can be done without changing anything to the
// application".
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/tsp.hpp"
#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

#include "example_config.hpp"

using namespace dsmpm2;

int main(int argc, char** argv) {
  const std::string protocol_name = argc > 1 ? argv[1] : "li_hudak";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 4;
  const int cities = argc > 3 ? std::atoi(argv[3]) : 14;

  pm2::Config cfg;
  cfg.nodes = nodes;
  cfg.driver = madeleine::bip_myrinet();
  pm2::Runtime rt(cfg);
  dsm::Dsm dsm(rt, example_dsm_config());

  const dsm::ProtocolId protocol = dsm.protocol_by_name(protocol_name);
  if (protocol == dsm::kInvalidProtocol) {
    std::fprintf(stderr, "unknown protocol '%s'\n", protocol_name.c_str());
    return 1;
  }

  apps::TspConfig tsp;
  tsp.n_cities = cities;
  tsp.protocol = protocol;

  const auto dist = apps::make_distance_matrix(cities, tsp.seed);
  const int reference = apps::solve_tsp_sequential(dist, cities);

  apps::TspResult result;
  rt.run([&] { result = apps::run_tsp(rt, dsm, tsp); });

  std::printf("TSP %d cities, %d nodes, protocol %s on %s\n", cities, nodes,
              protocol_name.c_str(), cfg.driver.name.c_str());
  std::printf("  best tour      : %d (sequential reference: %d)%s\n",
              result.best_length, reference,
              result.best_length == reference ? "" : "  MISMATCH!");
  std::printf("  virtual time   : %.2f ms\n", to_ms(result.elapsed));
  std::printf("  expansions     : %llu\n",
              static_cast<unsigned long long>(result.expansions));
  std::printf("  bound updates  : %llu\n",
              static_cast<unsigned long long>(result.bound_updates));
  std::printf("  thread migrations: %llu\n",
              static_cast<unsigned long long>(
                  dsm.counters().total(dsm::Counter::kThreadMigrations)));
  std::printf("\nper-node CPU busy time (the migrate_thread pile-up is visible "
              "here):\n");
  for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
    std::printf("  node %u: %.2f ms\n", n,
                to_ms(rt.cluster().node(n).cpu().busy_time()));
  }
  return 0;
}
