#pragma once
// Shared by every example: DSMPM2_CHECKER=1 in the environment runs the
// example under dsmcheck in abort mode, so the `checked.<example>` CTest
// entries fail loudly on any data race or protocol-invariant violation.
#include <cstdlib>

#include "dsm/config.hpp"

inline dsmpm2::dsm::DsmConfig example_dsm_config() {
  dsmpm2::dsm::DsmConfig cfg;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): examples are single-threaded here.
  if (std::getenv("DSMPM2_CHECKER") != nullptr) {
    cfg.enable_checker = true;
    cfg.checker_abort = true;
  }
  return cfg;
}
