#pragma once
// Shared by every example: DSMPM2_CHECKER=1 in the environment runs the
// example under dsmcheck in abort mode, so the `checked.<example>` CTest
// entries fail loudly on any data race or protocol-invariant violation.
// DSMPM2_MIGRATION=1 additionally turns on home + lock-manager migration
// (low bars so the small workloads actually trigger hand-offs); the
// `checked.<example>_migration` entries combine both, running a documented
// workload with the homes and managers in motion under the checker.
#include <cstdlib>

#include "dsm/config.hpp"

inline dsmpm2::dsm::DsmConfig example_dsm_config() {
  dsmpm2::dsm::DsmConfig cfg;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): examples are single-threaded here.
  if (std::getenv("DSMPM2_CHECKER") != nullptr) {
    cfg.enable_checker = true;
    cfg.checker_abort = true;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (std::getenv("DSMPM2_MIGRATION") != nullptr) {
    cfg.enable_home_migration = true;
    cfg.enable_manager_migration = true;
    cfg.migration_threshold = 2;
  }
  return cfg;
}
