// The paper's Figure 5 workload as a standalone program: minimal-cost map
// colouring of the 29 eastern-most US states, written against the Hyperion
// mini-runtime, with the Java-consistency protocol's access detection chosen
// on the command line.
//
//   ./example_map_coloring [ic|pf] [nodes] [states]
//
// ic — java_ic (inline locality checks on every get/put)
// pf — java_pf (page-fault detection; local accesses are free)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/map_coloring.hpp"
#include "dsm/dsm.hpp"
#include "hyperion/runtime.hpp"
#include "pm2/pm2.hpp"

#include "example_config.hpp"

using namespace dsmpm2;

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "pf";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 4;
  const int n_states = argc > 3 ? std::atoi(argv[3]) : 29;

  pm2::Config cfg;
  cfg.nodes = nodes;
  cfg.driver = madeleine::sisci_sci();  // the paper ran this on the SCI cluster
  pm2::Runtime rt(cfg);
  dsm::Dsm dsm(rt, example_dsm_config());
  hyperion::Runtime hyp(dsm, mode == "ic" ? hyperion::Detection::kInlineCheck
                                          : hyperion::Detection::kPageFault);

  apps::MapColoringConfig mc;
  mc.n_states = n_states;
  const int reference = apps::solve_map_coloring_sequential(mc);

  apps::MapColoringResult result;
  rt.run([&] { result = apps::run_map_coloring(rt, hyp, mc); });

  std::printf("map colouring: %d states, 4 colours (costs 1/2/3/4), %d nodes, "
              "java_%s on %s\n",
              n_states, nodes, mode.c_str(), cfg.driver.name.c_str());
  std::printf("  minimal cost  : %d (sequential reference: %d)%s\n",
              result.best_cost, reference,
              result.best_cost == reference ? "" : "  MISMATCH!");
  std::printf("  virtual time  : %.2f ms\n", to_ms(result.elapsed));
  std::printf("  expansions    : %llu\n",
              static_cast<unsigned long long>(result.expansions));
  std::printf("  object gets   : %llu\n",
              static_cast<unsigned long long>(result.gets));
  std::printf("  inline checks : %llu\n",
              static_cast<unsigned long long>(
                  dsm.counters().total(dsm::Counter::kInlineChecks)));
  std::printf("  page faults   : %llu\n",
              static_cast<unsigned long long>(
                  dsm.counters().total(dsm::Counter::kReadFaults) +
                  dsm.counters().total(dsm::Counter::kWriteFaults)));
  return 0;
}
