// Defining a new protocol from the 8 routines of Table 1 and registering it
// with create_protocol — the paper's §2.3 "Building new protocols", plus its
// closing emphasis on profiling: DSM-PM2 exists so researchers can assemble a
// protocol from the library toolbox, instrument it, and compare it against
// the built-ins *without touching the application*.
//
// The custom protocol here, "audited_sc", is behaviourally a sequential-
// consistency MRSW protocol composed from protocol-library routines — but
// every one of its 8 actions is wrapped with user-written instrumentation
// that accumulates per-action invocation counts and virtual-time latencies.
// At the end it prints a post-mortem profile of where protocol time went
// (the paper: "providing the user with valuable information on the time
// spent within each elementary function").
//
// The same application then runs, unmodified, under the built-in li_hudak —
// selected dynamically, no recompilation — to show the two behave alike.
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "dsm/dsm.hpp"
#include "dsm/protocol_lib.hpp"
#include "pm2/pm2.hpp"

#include "example_config.hpp"

using namespace dsmpm2;

namespace {

struct ActionProfile {
  const char* name;
  std::uint64_t calls = 0;
  SimTime total = 0;
};

struct Profile {
  std::array<ActionProfile, 8> actions{
      ActionProfile{"read_fault_handler"}, ActionProfile{"write_fault_handler"},
      ActionProfile{"read_server"},        ActionProfile{"write_server"},
      ActionProfile{"invalidate_server"},  ActionProfile{"receive_page_server"},
      ActionProfile{"lock_acquire"},       ActionProfile{"lock_release"}};

  void print() const {
    std::printf("%-22s %8s %14s %12s\n", "protocol action", "calls", "total(us)",
                "avg(us)");
    for (const auto& a : actions) {
      if (a.calls == 0) continue;
      std::printf("%-22s %8llu %14.1f %12.2f\n", a.name,
                  static_cast<unsigned long long>(a.calls), to_us(a.total),
                  to_us(a.total) / static_cast<double>(a.calls));
    }
  }
};

/// Wraps a protocol action with call counting and virtual-time accounting.
template <typename Ctx>
std::function<void(dsm::Dsm&, const Ctx&)> audited(
    Profile* profile, int slot, std::function<void(dsm::Dsm&, const Ctx&)> inner) {
  return [profile, slot, inner = std::move(inner)](dsm::Dsm& d, const Ctx& ctx) {
    const SimTime t0 = d.runtime().now();
    inner(d, ctx);
    auto& a = profile->actions[static_cast<std::size_t>(slot)];
    ++a.calls;
    a.total += d.runtime().now() - t0;
  };
}

/// Same, for the payload-bearing lock_release action (it returns the bytes
/// that ride the release message — empty for this eager protocol).
std::function<Packer(dsm::Dsm&, const dsm::SyncContext&)> audited_release(
    Profile* profile, int slot,
    std::function<Packer(dsm::Dsm&, const dsm::SyncContext&)> inner) {
  return [profile, slot,
          inner = std::move(inner)](dsm::Dsm& d, const dsm::SyncContext& ctx) {
    const SimTime t0 = d.runtime().now();
    Packer payload = inner(d, ctx);
    auto& a = profile->actions[static_cast<std::size_t>(slot)];
    ++a.calls;
    a.total += d.runtime().now() - t0;
    return payload;
  };
}

/// The user protocol: li_hudak's semantics, rebuilt from library routines
/// (exactly what the paper's "mixed approach" encourages) with auditing.
dsm::Protocol make_audited_sc(Profile* profile) {
  dsm::Protocol p;
  p.name = "audited_sc";
  p.read_fault_handler = audited<dsm::FaultContext>(
      profile, 0, [](dsm::Dsm& d, const dsm::FaultContext& ctx) {
        dsm::lib::acquire_page_copy(d, ctx);
      });
  p.write_fault_handler = audited<dsm::FaultContext>(
      profile, 1, [](dsm::Dsm& d, const dsm::FaultContext& ctx) {
        if (dsm::lib::upgrade_owner_to_write(d, ctx, /*eager_invalidate=*/true)) {
          return;
        }
        dsm::lib::acquire_page_copy(d, ctx);
      });
  p.read_server = audited<dsm::PageRequest>(
      profile, 2,
      [](dsm::Dsm& d, const dsm::PageRequest& r) { dsm::lib::serve_read_dynamic(d, r); });
  p.write_server = audited<dsm::PageRequest>(
      profile, 3,
      [](dsm::Dsm& d, const dsm::PageRequest& r) { dsm::lib::serve_write_dynamic(d, r); });
  p.invalidate_server = audited<dsm::InvalidateRequest>(
      profile, 4,
      [](dsm::Dsm& d, const dsm::InvalidateRequest& r) { dsm::lib::invalidate_local(d, r); });
  p.receive_page_server = audited<dsm::PageArrival>(
      profile, 5, [](dsm::Dsm& d, const dsm::PageArrival& a) {
        dsm::lib::receive_page_dynamic(d, a, /*eager_invalidate=*/true);
      });
  p.lock_acquire = audited<dsm::SyncContext>(profile, 6, dsm::lib::sync_noop);
  p.lock_release = audited_release(profile, 7, dsm::lib::sync_release_noop);
  return p;
}

/// The application: a small shared token-passing ring; identical code runs
/// under both protocols.
SimTime run_app(pm2::Runtime& rt, dsm::Dsm& dsm, dsm::ProtocolId protocol) {
  dsm::AllocAttr attr;
  attr.protocol = protocol;
  const DsmAddr token = dsm.dsm_malloc(sizeof(int), attr);
  const int lock = dsm.create_lock(protocol);
  dsm.write<int>(token, 0);
  const SimTime t0 = rt.now();
  std::vector<marcel::Thread*> workers;
  for (NodeId node = 0; node < static_cast<NodeId>(rt.node_count()); ++node) {
    workers.push_back(&rt.spawn_on(node, "ring", [&] {
      for (int round = 0; round < 8; ++round) {
        dsm.lock_acquire(lock);
        dsm.write<int>(token, dsm.read<int>(token) + 1);
        dsm.lock_release(lock);
        rt.compute(20 * kNsPerUs);
      }
    }));
  }
  for (auto* w : workers) rt.threads().join(*w);
  const int final_token = dsm.read<int>(token);
  std::printf("token = %d (expected %d)\n", final_token, rt.node_count() * 8);
  return rt.now() - t0;
}

}  // namespace

int main() {
  pm2::Config cfg;
  cfg.nodes = 4;
  cfg.driver = madeleine::sisci_sci();
  pm2::Runtime rt(cfg);
  dsm::Dsm dsm(rt, example_dsm_config());

  Profile profile;
  // dsm_create_protocol: the user protocol registers like any built-in.
  const dsm::ProtocolId audited_sc = dsm.create_protocol(make_audited_sc(&profile));

  rt.run([&] {
    std::printf("--- running under user protocol 'audited_sc' ---\n");
    const SimTime custom_time = run_app(rt, dsm, audited_sc);
    std::printf("\n--- identical application under built-in 'li_hudak' ---\n");
    const SimTime builtin_time = run_app(rt, dsm, dsm.builtin().li_hudak);
    std::printf("\nvirtual run time: audited_sc %.1fus, li_hudak %.1fus\n\n",
                to_us(custom_time), to_us(builtin_time));
  });

  std::printf("--- post-mortem per-action profile of audited_sc ---\n");
  profile.print();
  return 0;
}
