// SPLASH-style Jacobi relaxation over DSM (the paper's announced next step:
// "a more thorough performance evaluation using the SPLASH-2 benchmarks").
//
//   ./example_jacobi [protocol] [nodes] [size] [iterations]
//
// A regular, barrier-synchronized kernel: rows partitioned across nodes,
// sharing only at partition boundaries. Compare li_hudak (pages ping-pong on
// boundary pages) with hbrc_mw (concurrent writers on one page merge by
// diffs) by looking at the message counters the run prints.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/jacobi.hpp"
#include "dsm/dsm.hpp"
#include "pm2/pm2.hpp"

#include "example_config.hpp"

using namespace dsmpm2;

int main(int argc, char** argv) {
  const std::string protocol_name = argc > 1 ? argv[1] : "hbrc_mw";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 4;
  const int size = argc > 3 ? std::atoi(argv[3]) : 64;
  const int iterations = argc > 4 ? std::atoi(argv[4]) : 10;

  pm2::Config cfg;
  cfg.nodes = nodes;
  cfg.driver = madeleine::bip_myrinet();
  pm2::Runtime rt(cfg);
  dsm::Dsm dsm(rt, example_dsm_config());

  apps::JacobiConfig jc;
  jc.rows = size;
  jc.cols = size;
  jc.iterations = iterations;
  jc.protocol = dsm.protocol_by_name(protocol_name);
  if (jc.protocol == dsm::kInvalidProtocol) {
    std::fprintf(stderr, "unknown protocol '%s'\n", protocol_name.c_str());
    return 1;
  }

  const double reference = apps::jacobi_sequential_checksum(jc);
  apps::JacobiResult result;
  rt.run([&] { result = apps::run_jacobi(rt, dsm, jc); });

  std::printf("jacobi %dx%d, %d iterations, %d nodes, %s on %s\n", size, size,
              iterations, nodes, protocol_name.c_str(), cfg.driver.name.c_str());
  std::printf("  checksum     : %.6f (reference %.6f)%s\n", result.checksum,
              reference, result.checksum == reference ? "" : "  MISMATCH!");
  std::printf("  virtual time : %.2f ms\n", to_ms(result.elapsed));
  std::printf("\n%s", dsm.report().c_str());
  return 0;
}
